// Package insn defines the KFlex instruction set: a register-based bytecode
// compatible with the eBPF ISA (the paper retains eBPF's instruction set,
// §3), extended with four internal opcodes emitted by the Kie
// instrumentation engine and lowered natively by the VM.
//
// Instructions use the classic eBPF 8-byte layout:
//
//	opcode:8  dst_reg:4 src_reg:4  off:16  imm:32
//
// with a second slot carrying the high 32 immediate bits for LDDW.
package insn

import "fmt"

// Reg identifies one of the eleven architectural registers.
//
// R0 holds return values, R1–R5 are argument/caller-saved registers,
// R6–R9 are callee-saved, and R10 is the read-only frame pointer.
type Reg uint8

// Architectural registers.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10     // frame pointer, read-only
	NumRegs = 11
)

// String returns the conventional rN spelling.
func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// Instruction classes (low three opcode bits).
const (
	ClassLD    = 0x00
	ClassLDX   = 0x01
	ClassST    = 0x02
	ClassSTX   = 0x03
	ClassALU   = 0x04
	ClassJMP   = 0x05
	ClassJMP32 = 0x06
	ClassALU64 = 0x07
)

// Source-operand flag (bit 3): K selects the immediate, X the source register.
const (
	SrcK = 0x00
	SrcX = 0x08
)

// ALU operation bits (high nibble) for ClassALU/ClassALU64.
const (
	AluAdd  = 0x00
	AluSub  = 0x10
	AluMul  = 0x20
	AluDiv  = 0x30
	AluOr   = 0x40
	AluAnd  = 0x50
	AluLsh  = 0x60
	AluRsh  = 0x70
	AluNeg  = 0x80
	AluMod  = 0x90
	AluXor  = 0xa0
	AluMov  = 0xb0
	AluArsh = 0xc0
	AluEnd  = 0xd0
)

// Jump operation bits (high nibble) for ClassJMP/ClassJMP32.
const (
	JmpA    = 0x00
	JmpEq   = 0x10
	JmpGt   = 0x20
	JmpGe   = 0x30
	JmpSet  = 0x40
	JmpNe   = 0x50
	JmpSgt  = 0x60
	JmpSge  = 0x70
	JmpCall = 0x80
	JmpExit = 0x90
	JmpLt   = 0xa0
	JmpLe   = 0xb0
	JmpSlt  = 0xc0
	JmpSle  = 0xd0
)

// Size bits (bits 3–4) for load/store classes.
const (
	SizeW  = 0x00 // 4 bytes
	SizeH  = 0x08 // 2 bytes
	SizeB  = 0x10 // 1 byte
	SizeDW = 0x18 // 8 bytes
)

// Mode bits (high three bits) for load/store classes.
const (
	ModeIMM    = 0x00
	ModeMEM    = 0x60
	ModeATOMIC = 0xc0
)

// Atomic operation encodings carried in the immediate of an
// atomic STX instruction.
const (
	AtomicAdd     = AluAdd
	AtomicOr      = AluOr
	AtomicAnd     = AluAnd
	AtomicXor     = AluXor
	AtomicFetch   = 0x01
	AtomicXchg    = 0xe0 | AtomicFetch
	AtomicCmpXchg = 0xf0 | AtomicFetch
)

// Opcode is the 8-bit eBPF opcode byte.
type Opcode uint8

// Internal opcodes emitted by the Kie instrumentation engine. They occupy
// ALU64 operation slots (0xe0, 0xf0) that the eBPF ISA leaves unassigned, so
// they can never collide with verifier-accepted input programs.
const (
	// OpGuard sanitizes the heap address in Dst:
	// dst = (dst & heap_mask) + heap_base. Emitted before writes (and
	// before reads unless performance mode elides them).
	OpGuard Opcode = ClassALU64 | 0xe0 | SrcK
	// OpGuardRd is the read-access variant of OpGuard; it is skipped when
	// the program runs in performance mode (§3.2).
	OpGuardRd Opcode = ClassALU64 | 0xe0 | SrcX
	// OpProbe performs the *terminate heap access inserted at the back
	// edge of unbounded loops (§3.3). Imm carries the cancellation-point
	// ID so a fault can be attributed to its object table.
	OpProbe Opcode = ClassALU64 | 0xf0 | SrcK
	// OpXlat translates the extension-VA heap pointer in Dst into the
	// user-space mapping's VA prior to a store (translate-on-store, §3.4).
	OpXlat Opcode = ClassALU64 | 0xf0 | SrcX
)

// Class extracts the instruction class bits.
func (op Opcode) Class() uint8 { return uint8(op) & 0x07 }

// AluOp extracts the ALU operation bits.
func (op Opcode) AluOp() uint8 { return uint8(op) & 0xf0 }

// JmpOp extracts the jump operation bits.
func (op Opcode) JmpOp() uint8 { return uint8(op) & 0xf0 }

// Size extracts the access size bits of a load/store opcode.
func (op Opcode) Size() uint8 { return uint8(op) & 0x18 }

// Mode extracts the mode bits of a load/store opcode.
func (op Opcode) Mode() uint8 { return uint8(op) & 0xe0 }

// UsesImm reports whether the second operand is the immediate (K form).
func (op Opcode) UsesImm() bool { return uint8(op)&SrcX == 0 }

// IsInternal reports whether op is one of Kie's internal opcodes.
func (op Opcode) IsInternal() bool {
	return op == OpGuard || op == OpGuardRd || op == OpProbe || op == OpXlat
}

// SizeBytes returns the byte width selected by a load/store opcode.
func (op Opcode) SizeBytes() int {
	switch op.Size() {
	case SizeB:
		return 1
	case SizeH:
		return 2
	case SizeW:
		return 4
	default:
		return 8
	}
}

// SizeOf returns the opcode size bits for an access of n bytes.
func SizeOf(n int) uint8 {
	switch n {
	case 1:
		return SizeB
	case 2:
		return SizeH
	case 4:
		return SizeW
	case 8:
		return SizeDW
	}
	// Internal invariant: callers pass compile-time access widths (asm
	// builders, instrumentation); decoded programs never reach here.
	panic(fmt.Sprintf("insn: invalid access size %d", n))
}

// Instruction is one decoded bytecode instruction.
type Instruction struct {
	Op  Opcode
	Dst Reg
	Src Reg
	Off int16
	Imm int32

	// Imm64 carries the full 64-bit constant of an LDDW instruction
	// (Op == LoadImm64). When encoded, it occupies two 8-byte slots.
	Imm64 uint64
}

// LoadImm64 is the opcode of the two-slot 64-bit immediate load.
const LoadImm64 Opcode = ClassLD | ModeIMM | SizeDW

// IsLoadImm64 reports whether ins is the two-slot LDDW form.
func (ins Instruction) IsLoadImm64() bool { return ins.Op == LoadImm64 }

// Slots returns the number of encoding slots the instruction occupies.
func (ins Instruction) Slots() int {
	if ins.IsLoadImm64() {
		return 2
	}
	return 1
}

// --- Constructors -----------------------------------------------------------

// Mov64Reg returns dst = src.
func Mov64Reg(dst, src Reg) Instruction {
	return Instruction{Op: ClassALU64 | AluMov | SrcX, Dst: dst, Src: src}
}

// Mov64Imm returns dst = imm (sign-extended to 64 bits).
func Mov64Imm(dst Reg, imm int32) Instruction {
	return Instruction{Op: ClassALU64 | AluMov | SrcK, Dst: dst, Imm: imm}
}

// Mov32Reg returns w(dst) = w(src), zero-extending the upper half.
func Mov32Reg(dst, src Reg) Instruction {
	return Instruction{Op: ClassALU | AluMov | SrcX, Dst: dst, Src: src}
}

// Mov32Imm returns w(dst) = imm, zero-extending the upper half.
func Mov32Imm(dst Reg, imm int32) Instruction {
	return Instruction{Op: ClassALU | AluMov | SrcK, Dst: dst, Imm: imm}
}

// Alu64Reg returns dst = dst <op> src over 64 bits.
func Alu64Reg(op uint8, dst, src Reg) Instruction {
	return Instruction{Op: Opcode(ClassALU64 | op | SrcX), Dst: dst, Src: src}
}

// Alu64Imm returns dst = dst <op> imm over 64 bits.
func Alu64Imm(op uint8, dst Reg, imm int32) Instruction {
	return Instruction{Op: Opcode(ClassALU64 | op | SrcK), Dst: dst, Imm: imm}
}

// Alu32Reg returns w(dst) = w(dst) <op> w(src).
func Alu32Reg(op uint8, dst, src Reg) Instruction {
	return Instruction{Op: Opcode(ClassALU | op | SrcX), Dst: dst, Src: src}
}

// Alu32Imm returns w(dst) = w(dst) <op> imm.
func Alu32Imm(op uint8, dst Reg, imm int32) Instruction {
	return Instruction{Op: Opcode(ClassALU | op | SrcK), Dst: dst, Imm: imm}
}

// Neg64 returns dst = -dst.
func Neg64(dst Reg) Instruction {
	return Instruction{Op: ClassALU64 | AluNeg, Dst: dst}
}

// LoadMem returns dst = *(size*)(src + off).
func LoadMem(dst, src Reg, off int16, size int) Instruction {
	return Instruction{Op: Opcode(ClassLDX | ModeMEM | SizeOf(size)), Dst: dst, Src: src, Off: off}
}

// StoreMem returns *(size*)(dst + off) = src.
func StoreMem(dst Reg, off int16, src Reg, size int) Instruction {
	return Instruction{Op: Opcode(ClassSTX | ModeMEM | SizeOf(size)), Dst: dst, Src: src, Off: off}
}

// StoreImm returns *(size*)(dst + off) = imm.
func StoreImm(dst Reg, off int16, imm int32, size int) Instruction {
	return Instruction{Op: Opcode(ClassST | ModeMEM | SizeOf(size)), Dst: dst, Off: off, Imm: imm}
}

// Atomic returns an atomic read-modify-write: op is one of the Atomic*
// constants, applied at *(size*)(dst + off) with operand src.
func Atomic(op int32, dst Reg, off int16, src Reg, size int) Instruction {
	return Instruction{Op: Opcode(ClassSTX | ModeATOMIC | SizeOf(size)), Dst: dst, Src: src, Off: off, Imm: op}
}

// LoadImm returns the two-slot dst = imm64 instruction.
func LoadImm(dst Reg, imm uint64) Instruction {
	return Instruction{Op: LoadImm64, Dst: dst, Imm64: imm, Imm: int32(uint32(imm))}
}

// Ja returns an unconditional branch by off instructions.
func Ja(off int16) Instruction {
	return Instruction{Op: ClassJMP | JmpA, Off: off}
}

// JmpReg returns if dst <op> src goto +off (64-bit compare).
func JmpReg(op uint8, dst, src Reg, off int16) Instruction {
	return Instruction{Op: Opcode(ClassJMP | op | SrcX), Dst: dst, Src: src, Off: off}
}

// JmpImm returns if dst <op> imm goto +off (64-bit compare).
func JmpImm(op uint8, dst Reg, imm int32, off int16) Instruction {
	return Instruction{Op: Opcode(ClassJMP | op | SrcK), Dst: dst, Imm: imm, Off: off}
}

// Jmp32Reg returns if w(dst) <op> w(src) goto +off.
func Jmp32Reg(op uint8, dst, src Reg, off int16) Instruction {
	return Instruction{Op: Opcode(ClassJMP32 | op | SrcX), Dst: dst, Src: src, Off: off}
}

// Jmp32Imm returns if w(dst) <op> imm goto +off.
func Jmp32Imm(op uint8, dst Reg, imm int32, off int16) Instruction {
	return Instruction{Op: Opcode(ClassJMP32 | op | SrcK), Dst: dst, Imm: imm, Off: off}
}

// Call returns a helper-function call by helper ID.
func Call(helper int32) Instruction {
	return Instruction{Op: ClassJMP | JmpCall, Imm: helper}
}

// Exit returns the program-exit instruction.
func Exit() Instruction {
	return Instruction{Op: ClassJMP | JmpExit}
}

// Guard returns Kie's write-path sanitization of register r.
func Guard(r Reg) Instruction { return Instruction{Op: OpGuard, Dst: r} }

// GuardRd returns Kie's read-path sanitization of register r.
func GuardRd(r Reg) Instruction { return Instruction{Op: OpGuardRd, Dst: r} }

// Probe returns the terminate-word access for cancellation point cp.
func Probe(cp int32) Instruction { return Instruction{Op: OpProbe, Imm: cp} }

// Xlat returns translate-on-store of the heap pointer in r.
func Xlat(r Reg) Instruction { return Instruction{Op: OpXlat, Dst: r} }

// IsJump reports whether ins transfers control (excluding CALL and EXIT).
func (ins Instruction) IsJump() bool {
	cls := ins.Op.Class()
	if cls != ClassJMP && cls != ClassJMP32 {
		return false
	}
	op := ins.Op.JmpOp()
	return op != JmpCall && op != JmpExit
}

// IsCond reports whether ins is a conditional branch.
func (ins Instruction) IsCond() bool {
	return ins.IsJump() && ins.Op.JmpOp() != JmpA
}

// IsExit reports whether ins is EXIT.
func (ins Instruction) IsExit() bool {
	return ins.Op.Class() == ClassJMP && ins.Op.JmpOp() == JmpExit
}

// IsCall reports whether ins is a helper call.
func (ins Instruction) IsCall() bool {
	return ins.Op.Class() == ClassJMP && ins.Op.JmpOp() == JmpCall
}
