package insn

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

// fuzzSeeds are valid encoded programs covering the interesting encoder
// paths: plain ALU, LDDW slot pairs, and branches whose offsets must be
// rewritten between element and slot counting across an LDDW.
func fuzzSeeds(f *testing.F) {
	progs := [][]Instruction{
		{Mov64Imm(R0, 1), Exit()},
		{LoadImm(R1, 0xdeadbeefcafe), Mov64Reg(R0, R1), Exit()},
		{JmpImm(JmpEq, R1, 0, 1), LoadImm(R2, 1<<40), Alu64Reg(AluAdd, R0, R2), Exit()},
		{Ja(0), Exit()},
		{LoadMem(R0, R1, -8, 4), StoreMem(R10, -16, R0, 8), Exit()},
	}
	for _, p := range progs {
		raw, err := Encode(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, SlotSize))
}

// FuzzCodecRoundtrip checks encode/decode stability: any byte stream
// Decode accepts must re-encode successfully, decode back to the same
// instructions, and re-encode to identical bytes.
func FuzzCodecRoundtrip(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, raw []byte) {
		prog, err := Decode(raw)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		enc1, err := Encode(prog)
		if err != nil {
			t.Fatalf("Encode rejected Decode's output: %v", err)
		}
		prog2, err := Decode(enc1)
		if err != nil {
			t.Fatalf("Decode rejected Encode's output: %v", err)
		}
		if !reflect.DeepEqual(prog, prog2) {
			t.Fatalf("decode(encode(prog)) != prog:\n%s\nvs\n%s",
				Disassemble(prog), Disassemble(prog2))
		}
		enc2, err := Encode(prog2)
		if err != nil {
			t.Fatalf("second Encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatal("encoding is not stable across a round trip")
		}
	})
}

// FuzzDisasm feeds arbitrary slot bytes — including register and opcode
// encodings Decode would reject — straight into the disassembler, which
// must render something (possibly "<invalid …>") without panicking.
func FuzzDisasm(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, raw []byte) {
		for i := 0; i+SlotSize <= len(raw); i += SlotSize {
			b := raw[i : i+SlotSize]
			ins := Instruction{
				Op:    Opcode(b[0]),
				Dst:   Reg(b[1] & 0x0f),
				Src:   Reg(b[1] >> 4),
				Off:   int16(binary.LittleEndian.Uint16(b[2:])),
				Imm:   int32(binary.LittleEndian.Uint32(b[4:])),
				Imm64: uint64(binary.LittleEndian.Uint32(b[4:])),
			}
			if ins.String() == "" {
				t.Fatalf("slot %d disassembled to an empty string", i/SlotSize)
			}
		}
		if prog, err := Decode(raw); err == nil {
			if len(prog) > 0 && Disassemble(prog) == "" {
				t.Fatal("Disassemble returned nothing for a non-empty program")
			}
		}
	})
}
