package insn

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	if R3.String() != "r3" {
		t.Fatalf("R3.String() = %q", R3.String())
	}
	if !R10.Valid() {
		t.Fatal("R10 should be valid")
	}
	if Reg(11).Valid() {
		t.Fatal("Reg(11) should be invalid")
	}
}

func TestOpcodeAccessors(t *testing.T) {
	ld := LoadMem(R1, R2, 8, 4)
	if ld.Op.Class() != ClassLDX {
		t.Errorf("class = %#x, want LDX", ld.Op.Class())
	}
	if ld.Op.SizeBytes() != 4 {
		t.Errorf("size = %d, want 4", ld.Op.SizeBytes())
	}
	st := StoreMem(R10, -8, R3, 8)
	if st.Op.Class() != ClassSTX || st.Op.SizeBytes() != 8 {
		t.Errorf("store opcode wrong: %#x", uint8(st.Op))
	}
	add := Alu64Imm(AluAdd, R1, 7)
	if add.Op.AluOp() != AluAdd || !add.Op.UsesImm() {
		t.Errorf("add opcode wrong: %#x", uint8(add.Op))
	}
	jr := JmpReg(JmpSgt, R1, R2, 5)
	if jr.Op.JmpOp() != JmpSgt || jr.Op.UsesImm() {
		t.Errorf("jmp opcode wrong: %#x", uint8(jr.Op))
	}
}

func TestSizeOfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SizeOf(3) did not panic")
		}
	}()
	SizeOf(3)
}

func TestClassifiers(t *testing.T) {
	cases := []struct {
		ins                          Instruction
		jump, cond, exit, call, load bool
	}{
		{Ja(3), true, false, false, false, false},
		{JmpImm(JmpEq, R1, 0, 2), true, true, false, false, false},
		{Jmp32Reg(JmpLt, R1, R2, 2), true, true, false, false, false},
		{Exit(), false, false, true, false, false},
		{Call(12), false, false, false, true, false},
		{Mov64Imm(R0, 0), false, false, false, false, false},
		{LoadImm(R1, 1<<40), false, false, false, false, true},
	}
	for i, c := range cases {
		if c.ins.IsJump() != c.jump || c.ins.IsCond() != c.cond ||
			c.ins.IsExit() != c.exit || c.ins.IsCall() != c.call {
			t.Errorf("case %d (%v): classifiers wrong", i, c.ins)
		}
		if c.ins.IsLoadImm64() != c.load {
			t.Errorf("case %d: IsLoadImm64 = %v", i, c.ins.IsLoadImm64())
		}
	}
}

func TestInternalOpcodesDistinct(t *testing.T) {
	ops := []Opcode{OpGuard, OpGuardRd, OpProbe, OpXlat}
	seen := map[Opcode]bool{}
	for _, op := range ops {
		if !op.IsInternal() {
			t.Errorf("op %#x not marked internal", uint8(op))
		}
		if seen[op] {
			t.Errorf("op %#x duplicated", uint8(op))
		}
		seen[op] = true
		// Must not collide with any assigned ALU64 operation.
		if op.AluOp() <= AluEnd {
			t.Errorf("op %#x collides with assigned ALU op %#x", uint8(op), op.AluOp())
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	prog := []Instruction{
		Mov64Imm(R0, -1),
		LoadImm(R1, 0xdeadbeefcafe0123),
		LoadMem(R2, R1, -16, 2),
		StoreImm(R10, -8, 42, 4),
		StoreMem(R10, -16, R2, 8),
		Atomic(AtomicAdd|AtomicFetch, R1, 0, R2, 8),
		JmpImm(JmpSge, R2, -5, 3),
		Jmp32Imm(JmpNe, R2, 7, -2),
		Call(33),
		Neg64(R3),
		Alu32Reg(AluXor, R4, R5),
		Exit(),
	}
	raw, err := Encode(prog)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	wantSlots := 0
	for _, ins := range prog {
		wantSlots += ins.Slots()
	}
	if len(raw) != wantSlots*SlotSize {
		t.Fatalf("encoded %d bytes, want %d", len(raw), wantSlots*SlotSize)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got) != len(prog) {
		t.Fatalf("decoded %d insns, want %d", len(got), len(prog))
	}
	for i := range prog {
		if got[i] != prog[i] {
			t.Errorf("insn %d: got %+v want %+v", i, got[i], prog[i])
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, 7)); err == nil {
		t.Error("odd length accepted")
	}
	// Truncated LDDW.
	raw, _ := Encode([]Instruction{Mov64Imm(R0, 0)})
	raw[0] = byte(LoadImm64)
	if _, err := Decode(raw); err == nil {
		t.Error("truncated LDDW accepted")
	}
	// Invalid register nibble.
	raw, _ = Encode([]Instruction{Mov64Imm(R0, 0)})
	raw[1] = 0x0f // dst = r15
	if _, err := Decode(raw); err == nil {
		t.Error("invalid register accepted")
	}
	// Malformed LDDW second slot.
	raw, _ = Encode([]Instruction{LoadImm(R1, 99)})
	raw[SlotSize] = 0x07
	if _, err := Decode(raw); err == nil {
		t.Error("malformed LDDW second slot accepted")
	}
}

func TestEncodeRejectsInvalidReg(t *testing.T) {
	if _, err := Encode([]Instruction{{Op: ClassALU64 | AluMov | SrcK, Dst: Reg(12)}}); err == nil {
		t.Error("Encode accepted dst=r12")
	}
}

// quickInsn builds a random but well-formed instruction for round-trip tests.
func quickInsn(r *rand.Rand) Instruction {
	dst := Reg(r.Intn(NumRegs))
	src := Reg(r.Intn(NumRegs))
	off := int16(r.Uint32())
	imm := int32(r.Uint32())
	switch r.Intn(7) {
	case 0:
		return Alu64Reg(uint8(r.Intn(13))<<4, dst, src)
	case 1:
		return Alu32Imm(uint8(r.Intn(13))<<4, dst, imm)
	case 2:
		return LoadMem(dst, src, off, 1<<uint(r.Intn(4)))
	case 3:
		return StoreMem(dst, off, src, 1<<uint(r.Intn(4)))
	case 4:
		return JmpImm(uint8(1+r.Intn(7))<<4, dst, imm, off)
	case 5:
		return LoadImm(dst, r.Uint64())
	default:
		return Call(imm)
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		prog := make([]Instruction, 0, int(n%32)+1)
		for i := 0; i <= int(n%32); i++ {
			prog = append(prog, quickInsn(r))
		}
		// Retarget jumps to random valid destinations: Encode validates
		// that branch targets land within the program.
		for i := range prog {
			if prog[i].IsJump() {
				prog[i].Off = int16(r.Intn(len(prog)+1) - (i + 1))
			}
		}
		raw, err := Encode(prog)
		if err != nil {
			return false
		}
		got, err := Decode(raw)
		if err != nil || len(got) != len(prog) {
			return false
		}
		for i := range prog {
			if got[i] != prog[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDisassemble(t *testing.T) {
	prog := []Instruction{
		Mov64Imm(R1, 10),
		LoadMem(R2, R1, 8, 4),
		JmpImm(JmpEq, R2, 0, 1),
		Guard(R2),
		Probe(3),
		Xlat(R4),
		GuardRd(R5),
		Exit(),
	}
	out := Disassemble(prog)
	for _, want := range []string{
		"r1 = 10",
		"r2 = *(u32 *)(r1 +8)",
		"if r2 == 0 goto +1",
		"guard(r2)",
		"probe_terminate cp=3",
		"xlat(r4)",
		"guard_rd(r5)",
		"exit",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestDisassembleForms(t *testing.T) {
	cases := map[string]Instruction{
		"w3 = -w3":                        Alu32Reg(AluNeg, R3, R0),
		"r1 s>>= 3":                       Alu64Imm(AluArsh, R1, 3),
		"goto +5":                         Ja(5),
		"call 7":                          Call(7),
		"if w1 s< w2 goto -3":             Jmp32Reg(JmpSlt, R1, R2, -3),
		"*(u16 *)(r10 -4) = 9":            StoreImm(R10, -4, 9, 2),
		"atomic(0x1) *(u64 *)(r1 +0), r2": Atomic(AtomicAdd|AtomicFetch, R1, 0, R2, 8),
	}
	for want, ins := range cases {
		if got := ins.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestJumpOffsetsAcrossLDDW(t *testing.T) {
	// Element 0 jumps over an LDDW (2 wire slots) to element 2.
	prog := []Instruction{
		JmpImm(JmpEq, R1, 0, 1), // -> element 2
		LoadImm(R2, 0x1122334455667788),
		Exit(),
	}
	raw, err := Encode(prog)
	if err != nil {
		t.Fatal(err)
	}
	// On the wire, the branch must skip 2 slots.
	wireOff := int16(uint16(raw[2]) | uint16(raw[3])<<8)
	if wireOff != 2 {
		t.Fatalf("wire offset = %d, want 2", wireOff)
	}
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Off != 1 {
		t.Fatalf("decoded offset = %d, want 1", got[0].Off)
	}
}

func TestDecodeRejectsJumpIntoLDDW(t *testing.T) {
	prog := []Instruction{
		Ja(1), // fine as elements...
		LoadImm(R2, 7),
		Exit(),
	}
	raw, err := Encode(prog)
	if err != nil {
		t.Fatal(err)
	}
	raw[2] = 1 // retarget wire offset to land on LDDW's second slot
	raw[3] = 0
	if _, err := Decode(raw); err == nil {
		t.Fatal("jump into LDDW pair accepted")
	}
}

func TestEncodeRejectsOutOfRangeJump(t *testing.T) {
	if _, err := Encode([]Instruction{Ja(5), Exit()}); err == nil {
		t.Fatal("out-of-range jump accepted")
	}
}
