package insn

// Fingerprint returns a stable 64-bit FNV-1a hash over every field of
// every instruction in prog. The runtime's staged-compilation cache keys
// verified/instrumented/lowered artifacts by it (mixed with the load
// configuration), so it must change whenever any operand changes and must
// be stable across processes — it deliberately hashes decoded fields, not
// wire bytes, so programs built with kflex/asm and programs decoded from
// eBPF wire format fingerprint identically.
func Fingerprint(prog []Instruction) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, ins := range prog {
		mix(uint64(ins.Op) | uint64(ins.Dst)<<8 | uint64(ins.Src)<<16 |
			uint64(uint16(ins.Off))<<24)
		mix(uint64(uint32(ins.Imm)))
		mix(ins.Imm64)
	}
	return h
}
