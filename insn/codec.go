package insn

import (
	"encoding/binary"
	"fmt"
)

// SlotSize is the byte size of one encoded instruction slot.
const SlotSize = 8

// Encode serializes a program into the 8-byte-per-slot eBPF wire format
// (little-endian, dst in the low register nibble). LDDW instructions occupy
// two slots with the high 32 immediate bits in the second slot.
//
// In-memory jump offsets count decoded instructions (LDDW is one element);
// on the wire they count slots (LDDW is two), so Encode rewrites branch
// offsets accordingly and Decode reverses the mapping.
func Encode(prog []Instruction) ([]byte, error) {
	// slotOf[i] is the first wire slot of instruction i.
	slotOf := make([]int, len(prog)+1)
	for i, ins := range prog {
		slotOf[i+1] = slotOf[i] + ins.Slots()
	}
	var out []byte
	for i, ins := range prog {
		if !ins.Dst.Valid() || !ins.Src.Valid() {
			return nil, fmt.Errorf("insn %d: invalid register (dst=%d src=%d)", i, ins.Dst, ins.Src)
		}
		if ins.IsJump() {
			target := i + 1 + int(ins.Off)
			if target < 0 || target > len(prog) {
				return nil, fmt.Errorf("insn %d: jump target %d out of range", i, target)
			}
			ins.Off = int16(slotOf[target] - (slotOf[i] + 1))
		}
		var b [SlotSize]byte
		b[0] = byte(ins.Op)
		b[1] = byte(ins.Dst) | byte(ins.Src)<<4
		binary.LittleEndian.PutUint16(b[2:], uint16(ins.Off))
		if ins.IsLoadImm64() {
			binary.LittleEndian.PutUint32(b[4:], uint32(ins.Imm64))
			out = append(out, b[:]...)
			var hi [SlotSize]byte
			binary.LittleEndian.PutUint32(hi[4:], uint32(ins.Imm64>>32))
			out = append(out, hi[:]...)
			continue
		}
		binary.LittleEndian.PutUint32(b[4:], uint32(ins.Imm))
		out = append(out, b[:]...)
	}
	return out, nil
}

// Decode parses wire-format bytecode produced by Encode (or by an eBPF
// toolchain) back into instructions, fusing LDDW slot pairs.
func Decode(raw []byte) ([]Instruction, error) {
	if len(raw)%SlotSize != 0 {
		return nil, fmt.Errorf("insn: bytecode length %d is not a multiple of %d", len(raw), SlotSize)
	}
	var prog []Instruction
	idxOfSlot := make(map[int]int) // wire slot -> decoded index
	var slotOfIdx []int            // decoded index -> first wire slot
	for i := 0; i < len(raw); i += SlotSize {
		start := i / SlotSize
		b := raw[i : i+SlotSize]
		ins := Instruction{
			Op:  Opcode(b[0]),
			Dst: Reg(b[1] & 0x0f),
			Src: Reg(b[1] >> 4),
			Off: int16(binary.LittleEndian.Uint16(b[2:])),
			Imm: int32(binary.LittleEndian.Uint32(b[4:])),
		}
		if !ins.Dst.Valid() || !ins.Src.Valid() {
			return nil, fmt.Errorf("insn: slot %d: invalid register encoding", i/SlotSize)
		}
		if ins.IsLoadImm64() {
			if i+2*SlotSize > len(raw) {
				return nil, fmt.Errorf("insn: slot %d: truncated LDDW", i/SlotSize)
			}
			hi := raw[i+SlotSize : i+2*SlotSize]
			if hi[0] != 0 || hi[1] != 0 || binary.LittleEndian.Uint16(hi[2:]) != 0 {
				return nil, fmt.Errorf("insn: slot %d: malformed LDDW second slot", i/SlotSize)
			}
			ins.Imm64 = uint64(uint32(ins.Imm)) | uint64(binary.LittleEndian.Uint32(hi[4:]))<<32
			i += SlotSize
		}
		idxOfSlot[start] = len(prog)
		slotOfIdx = append(slotOfIdx, start)
		prog = append(prog, ins)
	}
	totalSlots := len(raw) / SlotSize
	idxOfSlot[totalSlots] = len(prog)
	// Rewrite branch offsets from slot counting to element counting.
	for i := range prog {
		if !prog[i].IsJump() {
			continue
		}
		targetSlot := slotOfIdx[i] + 1 + int(prog[i].Off)
		idx, ok := idxOfSlot[targetSlot]
		if !ok {
			return nil, fmt.Errorf("insn %d: jump lands inside an LDDW pair (slot %d)", i, targetSlot)
		}
		prog[i].Off = int16(idx - (i + 1))
	}
	return prog, nil
}
