package kflex_test

import (
	"encoding/binary"
	"testing"

	"kflex"
	"kflex/asm"
	"kflex/insn"
	"kflex/internal/netsim"
)

// listing1 builds the paper's Listing 1 (see examples/kvstore for the
// annotated version): an XDP key-value store over a heap linked list with a
// spin lock and per-hit socket lookup/release.
func listing1(t *testing.T) []insn.Instruction {
	t.Helper()
	const (
		nKey, nVal, nNext, nPrev = 0, 8, 16, 24
		gHead, gLock             = kflex.GlobalsOff, kflex.GlobalsOff + 8
	)
	b := asm.New()
	b.Mov(insn.R9, insn.R1)
	b.Call(kflex.HelperKflexHeapBase)
	b.Mov(insn.R8, insn.R0)
	b.Load(insn.R2, insn.R9, 0, 4)
	b.JmpImm(insn.JmpLt, insn.R2, 9, "drop")
	b.Mov(insn.R1, insn.R9)
	b.MovImm(insn.R2, 0)
	b.Mov(insn.R3, insn.R10)
	b.Add(insn.R3, -16)
	b.MovImm(insn.R4, 9)
	b.Call(kflex.HelperPktLoadBytes)
	b.JmpImm(insn.JmpNe, insn.R0, 0, "drop")
	b.Load(insn.R7, insn.R10, -15, 4)
	b.StoreImm(insn.R10, -32, 0, 8)
	b.StoreImm(insn.R10, -24, 0, 4)
	b.Mov(insn.R1, insn.R8)
	b.Add(insn.R1, gLock)
	b.Call(kflex.HelperKflexSpinLock)
	b.Load(insn.R6, insn.R8, gHead, 8)
	b.Label("loop")
	b.JmpImm(insn.JmpEq, insn.R6, 0, "miss")
	b.Load(insn.R0, insn.R6, nKey, 8)
	b.JmpReg(insn.JmpEq, insn.R0, insn.R7, "found")
	b.Load(insn.R6, insn.R6, nNext, 8)
	b.Ja("loop")
	b.Label("found")
	b.Mov(insn.R1, insn.R9)
	b.Mov(insn.R2, insn.R10)
	b.Add(insn.R2, -32)
	b.MovImm(insn.R3, 12)
	b.MovImm(insn.R4, 0)
	b.MovImm(insn.R5, 0)
	b.Call(kflex.HelperSkLookup)
	b.JmpImm(insn.JmpEq, insn.R0, 0, "miss")
	b.Store(insn.R10, -40, insn.R0, 8)
	b.Load(insn.R1, insn.R10, -16, 1)
	b.JmpImm(insn.JmpEq, insn.R1, 1, "delete")
	b.Load(insn.R2, insn.R10, -11, 4)
	b.Store(insn.R6, nVal, insn.R2, 8)
	b.Ja("release")
	b.Label("delete")
	b.Load(insn.R3, insn.R6, nNext, 8)
	b.Load(insn.R4, insn.R6, nPrev, 8)
	b.JmpImm(insn.JmpEq, insn.R4, 0, "del-head")
	b.Store(insn.R4, nNext, insn.R3, 8)
	b.Ja("del-fix")
	b.Label("del-head")
	b.Store(insn.R8, gHead, insn.R3, 8)
	b.Label("del-fix")
	b.JmpImm(insn.JmpEq, insn.R3, 0, "del-free")
	b.Store(insn.R3, nPrev, insn.R4, 8)
	b.Label("del-free")
	b.Mov(insn.R1, insn.R6)
	b.Call(kflex.HelperKflexFree)
	b.Label("release")
	b.Load(insn.R1, insn.R10, -40, 8)
	b.Call(kflex.HelperSkRelease)
	b.Label("miss")
	b.Mov(insn.R1, insn.R8)
	b.Add(insn.R1, gLock)
	b.Call(kflex.HelperKflexSpinUnlock)
	b.Ret(int32(kflex.XDPDrop))
	b.Label("drop")
	b.Ret(int32(kflex.XDPDrop))
	return b.MustAssemble()
}

func listing1Packet(op byte, key, value uint32, sock *kflex.KernelObject) *netsim.Packet {
	data := make([]byte, 9)
	data[0] = op
	binary.LittleEndian.PutUint32(data[1:], key)
	binary.LittleEndian.PutUint32(data[5:], value)
	return &netsim.Packet{Data: data, Sock: sock}
}

// TestListing1EndToEnd runs the paper's flagship example through the whole
// pipeline: eBPF-mode rejection, KFlex load, user-side seeding through the
// shared heap, update and delete with socket acquire/release, and the
// paper's wire-format compatibility (the bytecode round-trips through the
// eBPF encoding before loading).
func TestListing1EndToEnd(t *testing.T) {
	prog := listing1(t)

	// Wire-format fidelity: encode to eBPF bytes and decode back.
	raw, err := insn.Encode(prog)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := insn.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}

	rt := kflex.NewRuntime()
	if _, err := rt.Load(kflex.Spec{
		Name: "listing1-ebpf", Insns: decoded, Hook: kflex.HookXDP, Mode: kflex.ModeEBPF,
	}); err == nil {
		t.Fatal("eBPF mode accepted Listing 1 (unbounded list walk)")
	}
	ext, err := rt.Load(kflex.Spec{
		Name: "listing1", Insns: decoded, Hook: kflex.HookXDP,
		Mode: kflex.ModeKFlex, HeapSize: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ext.Close()
	if ext.Report().Probes == 0 {
		t.Fatal("list walk has no cancellation probe")
	}

	// Seed two nodes from user space (§3.4 co-design surface).
	uv, err := ext.UserView()
	if err != nil {
		t.Fatal(err)
	}
	var prev uint64
	for key := uint64(1); key <= 2; key++ {
		node, err := ext.UserMalloc(32)
		if err != nil {
			t.Fatal(err)
		}
		for off, val := range map[uint64]uint64{0: key, 8: 0, 16: prev, 24: 0} {
			if err := uv.Store(node+off, 8, val); err != nil {
				t.Fatal(err)
			}
		}
		prev = node
	}
	if err := uv.Store(uv.Base()+kflex.GlobalsOff, 8, ext.Heap().TranslateToExt(prev)); err != nil {
		t.Fatal(err)
	}

	sock := kflex.NewKernelObject("sock", nil)
	h := ext.Handle(0)

	// Update key 1 -> 42; the socket is acquired and released.
	pkt := listing1Packet(0, 1, 42, sock)
	res, err := h.Run(pkt, pkt.XDPCtx(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != uint64(kflex.XDPDrop) || res.Cancelled != kflex.CancelNone {
		t.Fatalf("update: %+v", res)
	}
	if sock.Refs() != 1 {
		t.Fatalf("socket leaked: refs=%d", sock.Refs())
	}
	// The value is visible from user space through the shared heap.
	node, _ := uv.Load(uv.Base()+kflex.GlobalsOff, 8)
	nodeUser := ext.Heap().TranslateToUser(node)
	// Walk to key 1.
	for {
		k, _ := uv.Load(nodeUser+0, 8)
		if k == 1 {
			break
		}
		next, _ := uv.Load(nodeUser+16, 8)
		if next == 0 {
			t.Fatal("key 1 not found from user space")
		}
		nodeUser = ext.Heap().TranslateToUser(next)
	}
	if v, _ := uv.Load(nodeUser+8, 8); v != 42 {
		t.Fatalf("user space sees value %d, want 42", v)
	}

	// Delete key 2, then updating it misses (socket still balanced).
	pkt = listing1Packet(1, 2, 0, sock)
	if _, err := h.Run(pkt, pkt.XDPCtx(0)); err != nil {
		t.Fatal(err)
	}
	frees := ext.Alloc().Stats().Frees
	if frees != 1 {
		t.Fatalf("kflex_free not called: frees=%d", frees)
	}
	pkt = listing1Packet(0, 2, 9, sock)
	if _, err := h.Run(pkt, pkt.XDPCtx(0)); err != nil {
		t.Fatal(err)
	}
	if sock.Refs() != 1 {
		t.Fatalf("refs=%d after miss path", sock.Refs())
	}
}
