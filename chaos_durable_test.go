// Durable-store chaos: the supervised Memcached deployment runs with the
// WAL-backed store as its authoritative store while the storage device
// injects deterministic faults (short writes, failed fsyncs, torn tails).
// The suite crashes the device, reopens it, and checks crash consistency
// — the recovered store is exactly a prefix of the acknowledged write
// history — plus the O(delta) warm-resync contract and determinism of the
// whole recovery under a fixed seed.
package kflex_test

import (
	"bytes"
	"testing"
	"time"

	"kflex/internal/apps/memcached"
	"kflex/internal/durable"
	"kflex/internal/faultinject"
	"kflex/internal/supervisor"
	"kflex/internal/workload"
)

// durableOracle records every acknowledged mutation in order, so a
// recovered store can be checked against the exact prefix its sequence
// number claims to hold.
type durableOracle struct {
	keys, values [][]byte
}

func (o *durableOracle) set(key, value []byte) {
	o.keys = append(o.keys, append([]byte(nil), key...))
	o.values = append(o.values, append([]byte(nil), value...))
}

// checkPrefix asserts that st holds exactly the first st.Seq() mutations.
func (o *durableOracle) checkPrefix(t *testing.T, st *durable.Store) {
	t.Helper()
	n := st.Seq()
	if n > uint64(len(o.keys)) {
		t.Fatalf("recovered seq %d beyond oracle history %d", n, len(o.keys))
	}
	want := make(map[string][]byte)
	for i := uint64(0); i < n; i++ {
		want[string(o.keys[i])] = o.values[i]
	}
	if st.Len() != len(want) {
		t.Fatalf("recovered %d keys, oracle prefix has %d", st.Len(), len(want))
	}
	for k, v := range want {
		if got := st.Get([]byte(k)); !bytes.Equal(got, v) {
			t.Fatalf("recovered %q = %q, oracle prefix says %q", k, got, v)
		}
	}
}

type durableRun struct {
	hash      uint64
	seq       uint64
	info      durable.RecoveryInfo
	stats     supervisor.Stats
	offloaded uint64
	fallbacks uint64
}

// runDurableScenario drives the supervised deployment over an adversarial
// device through a full degrade/quarantine/reload cycle, then crashes the
// device and reopens it, checking the oracle-prefix invariant at the end.
func runDurableScenario(t *testing.T, seed int64) durableRun {
	t.Helper()
	storePlan := faultinject.NewPlan(seed).
		SetRate(faultinject.StoreShort, 0.03).
		SetRate(faultinject.StoreSync, 0.05)
	dir := durable.NewMemDir(storePlan)
	st, info0, err := durable.Open(dir, durable.Options{SyncEvery: 2, SegmentBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if info0.Replayed != 0 || info0.Keys != 0 {
		t.Fatalf("fresh device recovered state: %+v", info0)
	}

	extPlan := faultinject.NewPlan(seed + 1).SetRate(faultinject.HelperErr, 1.0)
	cfg := memcached.DefaultConfig(workload.Mix{GetPct: 50})
	cfg.Seed = seed
	cfg.Preload = false
	cfg.FaultPlan = extPlan
	cfg.LocalCancel = true
	cfg.CancelThreshold = 3
	cfg.Durable = st
	clk := &fakeClock{now: time.Unix(0, 0)}
	mc, err := memcached.NewSupervisedRecovered(cfg, 1, supervisor.Tuning{
		BackoffBase:         time.Millisecond,
		BackoffMax:          8 * time.Millisecond,
		ProbeRuns:           4,
		MaxConcurrentProbes: 1,
		JitterSeed:          seed + 2,
		Now:                 clk.Now,
	}, &info0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mc.Close)
	sup := mc.Supervisor()

	oracle := &durableOracle{}
	keyOf := func(i int) []byte { return workload.FormatKey(uint64(i+1), memcached.KeySize) }
	valOf := func(i, ver int) []byte {
		return workload.FormatValue(uint64(i+1)*1000+uint64(ver), cfg.ValueSize)
	}
	set := func(i, ver int) {
		reply, _, _ := mc.Execute(0, memcached.EncodeSet(keyOf(i), valOf(i, ver)))
		if len(reply) != 1 || reply[0] != 'S' {
			t.Fatalf("SET %d: reply %q", i, reply)
		}
		oracle.set(keyOf(i), valOf(i, ver))
	}
	get := func(i, ver int) bool {
		reply, _, offloaded := mc.Execute(0, memcached.EncodeGet(keyOf(i)))
		if len(reply) < 1 || reply[0] != 'V' || !bytes.Equal(reply[1:], valOf(i, ver)) {
			t.Fatalf("GET %d: reply %q", i, reply)
		}
		return offloaded
	}

	const keys = 16
	// Phase A — Healthy with storage faults armed: every acknowledged SET
	// is written through to the durable store, which absorbs short writes
	// and failed fsyncs (re-basing via snapshot when the log breaks).
	storePlan.Enable()
	for i := 0; i < keys; i++ {
		set(i, 0)
		get(i, 0)
	}

	// Phase B — extension fault burst: degrade to quarantine. Fallback
	// SETs land only in the durable store (still under storage faults).
	extPlan.Enable()
	for i := 0; sup.State() != supervisor.Quarantined; i++ {
		if i >= 16 {
			t.Fatalf("no quarantine after %d faulted requests", i)
		}
		get(i%keys, 0)
	}
	extPlan.Disarm()
	for i := 0; i < keys/2; i++ {
		set(i, 1) // acknowledged on the fallback path: dirty keys
	}

	// Phase C — recovery: reload (warm when the audit was clean), resync
	// the delta, circuit closes. Updated values must be served.
	clk.Advance(10 * time.Millisecond)
	for i := 0; i < 64; i++ {
		k := i % keys
		ver := 0
		if k < keys/2 {
			ver = 1
		}
		get(k, ver)
	}
	if s := sup.State(); s != supervisor.Healthy {
		t.Fatalf("after recovery: state %v, want healthy", s)
	}
	storePlan.Disarm()

	// Crash the device: everything unsynced is gone. Reopen and check the
	// recovered store is exactly a prefix of the acknowledged history.
	liveHash, liveSeq := st.Hash(), st.Seq()
	dir.Crash()
	st.Close()
	re, info, err := durable.Open(dir, durable.Options{SyncEvery: 2, SegmentBytes: 8 << 10})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer re.Close()
	oracle.checkPrefix(t, re)
	if re.Seq() == 0 {
		t.Fatal("crash recovery lost the entire history")
	}
	// The live (pre-crash) store held the full history.
	if liveSeq != uint64(len(oracle.keys)) {
		t.Fatalf("live store seq %d, acknowledged %d mutations", liveSeq, len(oracle.keys))
	}
	_ = liveHash

	return durableRun{
		hash:      re.Hash(),
		seq:       re.Seq(),
		info:      info,
		stats:     sup.Stats(),
		offloaded: mc.Offloaded,
		fallbacks: mc.Fallbacks,
	}
}

func TestChaosDurableSupervisedCrashRecovery(t *testing.T) {
	run := runDurableScenario(t, 808)
	if run.stats.Reloads != 1 {
		t.Fatalf("reloads = %d, want 1", run.stats.Reloads)
	}
}

// TestChaosDurableDeterminism re-runs the same seed and requires the
// recovered store, recovery info, and lifecycle stats to be identical.
func TestChaosDurableDeterminism(t *testing.T) {
	a := runDurableScenario(t, 909)
	b := runDurableScenario(t, 909)
	if a.hash != b.hash || a.seq != b.seq {
		t.Fatalf("recovered stores diverged: %#x/%d vs %#x/%d", a.hash, a.seq, b.hash, b.seq)
	}
	if a.info != b.info {
		t.Fatalf("recovery info diverged:\n%+v\n%+v", a.info, b.info)
	}
	if a.stats != b.stats {
		t.Fatalf("lifecycle stats diverged:\n%+v\n%+v", a.stats, b.stats)
	}
	if a.offloaded != b.offloaded || a.fallbacks != b.fallbacks {
		t.Fatalf("outcomes diverged: offloaded %d/%d fallbacks %d/%d",
			a.offloaded, b.offloaded, a.fallbacks, b.fallbacks)
	}
}

// TestChaosDurableResyncDelta pins the O(delta) resync contract: after a
// quarantine with K fallback writes, the warm reload pushes exactly K
// keys into the adopted heap — not the whole store.
func TestChaosDurableResyncDelta(t *testing.T) {
	const preload = 64
	const delta = 5
	cfg := memcached.DefaultConfig(workload.Mix{GetPct: 50})
	cfg.Preload = false
	clk := &fakeClock{now: time.Unix(0, 0)}
	mc, err := memcached.NewSupervised(cfg, 1, supervisor.Tuning{
		BackoffBase: time.Millisecond,
		BackoffMax:  8 * time.Millisecond,
		ProbeRuns:   1,
		Now:         clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mc.Close)
	sup := mc.Supervisor()

	keyOf := func(i int) []byte { return workload.FormatKey(uint64(i+1), memcached.KeySize) }
	for i := 0; i < preload; i++ {
		frame := memcached.EncodeSet(keyOf(i), workload.FormatValue(uint64(i+1), cfg.ValueSize))
		if reply, _, _ := mc.Execute(0, frame); len(reply) != 1 || reply[0] != 'S' {
			t.Fatalf("SET %d failed: %q", i, reply)
		}
	}

	// Operator quarantine (clean audit: nothing degraded organically).
	if !sup.Quarantine("maintenance") {
		t.Fatal("Quarantine refused on a healthy supervisor")
	}
	// K writes acknowledged on the fallback path while the heap is out.
	for i := 0; i < delta; i++ {
		frame := memcached.EncodeSet(keyOf(i), workload.FormatValue(uint64(i+1)*7, cfg.ValueSize))
		if _, _, offloaded := mc.Execute(0, frame); offloaded {
			t.Fatalf("quarantined SET %d claimed the offload path", i)
		}
	}

	clk.Advance(10 * time.Millisecond)
	// First request reloads warm and resyncs; ProbeRuns=1 closes the circuit.
	frame := memcached.EncodeGet(keyOf(0))
	if reply, _, _ := mc.Execute(0, frame); len(reply) < 1 || reply[0] != 'V' {
		t.Fatalf("post-reload GET: %q", reply)
	}
	st := sup.Stats()
	if st.WarmReloads != 1 {
		t.Fatalf("warm reloads = %d, want 1 (audit was clean)", st.WarmReloads)
	}
	if st.LastInit.FullResync {
		t.Fatalf("warm reload did a full resync: %+v", st.LastInit)
	}
	if st.LastInit.ResyncOps != delta {
		t.Fatalf("resync ops = %d, want exactly the %d dirty keys (O(delta) contract)",
			st.LastInit.ResyncOps, delta)
	}
	// The updated values are served from the adopted heap on the offload path.
	for i := 0; i < delta; i++ {
		reply, _, offloaded := mc.Execute(0, memcached.EncodeGet(keyOf(i)))
		want := workload.FormatValue(uint64(i+1)*7, cfg.ValueSize)
		if len(reply) < 1 || reply[0] != 'V' || !bytes.Equal(reply[1:], want) {
			t.Fatalf("GET %d after warm resync: %q", i, reply)
		}
		if !offloaded {
			t.Fatalf("GET %d not offloaded after recovery", i)
		}
	}
}
